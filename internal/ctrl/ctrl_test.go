package ctrl

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hap/internal/fit"
	"hap/internal/mmpp"
	"hap/internal/netgen"
)

// testConfig is a daemon config sized for fast tests: tiny refit cadence,
// generous service rate, short idle chunks.
func testConfig(listeners int) Config {
	addrs := make([]string, listeners)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return Config{
		ListenAddrs: addrs,
		ServiceRate: 1e5,
		TargetDelay: 0.01,
		RefitEvery:  200,
		Window:      1e9,
		MinWindow:   8,
		IdleChunk:   50 * time.Millisecond,
	}
}

// feedUDP writes n crafted packets to addr, pacing them with gap.
func feedUDP(t *testing.T, addr string, n int, gap time.Duration) {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for seq := uint64(1); seq <= uint64(n); seq++ {
		if _, err := conn.Write(netgen.Packet{Seq: seq}.Encode(nil)); err != nil {
			t.Fatal(err)
		}
		if gap > 0 {
			time.Sleep(gap)
		}
	}
}

// syntheticTimes builds a deterministic bursty arrival sequence (a
// two-rate mixture), the same input the determinism tests feed twice.
func syntheticTimes(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, n)
	now := 0.0
	for i := 0; i < n; i++ {
		rate := 50.0
		if i >= n/2 {
			rate = 500.0
		}
		now += rng.ExpFloat64() / rate
		out = append(out, now)
	}
	return out
}

// runStreamOnce ingests times into a fresh sink-less stream, flushes the
// final fit synchronously, and returns the published state.
func runStreamOnce(t *testing.T, cfg Config, times []float64) published {
	t.Helper()
	cfg.applyDefaults()
	s, err := newStream("s0", nil, &cfg, newPool(cfg.QueueDepth), StreamOverride{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range times {
		s.ingest(sec)
	}
	s.flushFinal()
	return s.snapshot()
}

// TestDaemonSIGTERMDrain delivers a real SIGTERM mid-ingest and asserts
// the daemon drains: Run returns nil, every stream flushes a final fit,
// and the sockets are gone. Run under -race this also shakes out ingest /
// pool-worker / API data races.
func TestDaemonSIGTERMDrain(t *testing.T) {
	cfg := testConfig(2)
	cfg.RefitEvery = 1000 // keep mid-run refits rare; the drain flush is the point
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()

	// Enough packets on both streams to make the final fit meaningful.
	for _, s := range d.Streams() {
		feedUDP(t, s.Addr(), 300, 20*time.Microsecond)
	}
	// Keep traffic flowing while the signal lands.
	senderCtx, stopSender := context.WithCancel(context.Background())
	defer stopSender()
	var senderWG sync.WaitGroup
	senderWG.Add(1)
	go func() {
		defer senderWG.Done()
		conn, err := net.Dial("udp", d.Streams()[0].Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		for seq := uint64(1000); senderCtx.Err() == nil; seq++ {
			conn.Write(netgen.Packet{Seq: seq}.Encode(nil))
			time.Sleep(100 * time.Microsecond)
		}
	}()
	// Let ingest observe some of the live traffic, then signal.
	deadline := time.Now().Add(5 * time.Second)
	for d.Streams()[0].arrivals.Load() < 400 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	stopSender()
	senderWG.Wait()
	for _, s := range d.Streams() {
		if got := s.state(time.Now()); got != StateClosed {
			t.Errorf("stream %s state after drain = %q, want %q", s.ID, got, StateClosed)
		}
		pub := s.snapshot()
		if !pub.hasFit {
			t.Errorf("stream %s drained without flushing a final fit (%d arrivals)", s.ID, s.arrivals.Load())
		}
	}
	// The drain ran a final aggregate recompute over the flushed fits.
	agg := d.agg.snapshot()
	if !agg.ok || len(agg.streams) != 2 {
		t.Errorf("final aggregate recompute missing: %+v", agg)
	}
}

// TestDrainStateGating pins the deterministic drain ordering: the moment
// the sinks close a stream reports closed — before its final flush, not
// whenever the last pool cycle happens to finish.
func TestDrainStateGating(t *testing.T) {
	d, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d.api.close()
	s := d.Streams()[0]
	if got := s.state(time.Now()); got != StateWarming {
		t.Fatalf("fresh stream state = %q, want %q", got, StateWarming)
	}
	d.closeSinks()
	if got := s.state(time.Now()); got != StateClosed {
		t.Errorf("state after closeSinks = %q, want %q (drain owns the stream from sink closure)", got, StateClosed)
	}
}

// TestMultiStreamDeterminism pins the decision contract: identical
// arrival sequences produce identical fits and decisions, independent of
// which stream carried them. Mid-run refit cycles are allowed to be
// skipped under load (nondeterministic), so the test exercises the
// deterministic path the contract covers: the drain-time flush.
func TestMultiStreamDeterminism(t *testing.T) {
	cfg := testConfig(0)
	cfg.ListenAddrs = nil
	cfg.RefitEvery = 1 << 30 // only the final flush fits
	times := syntheticTimes(3000, 42)

	a := runStreamOnce(t, cfg, times)
	b := runStreamOnce(t, cfg, times)
	if !a.hasFit || !b.hasFit {
		t.Fatal("no fit published")
	}
	if a.fit != b.fit {
		t.Errorf("fits diverge:\n  a=%+v\n  b=%+v", a.fit, b.fit)
	}
	if a.dec != b.dec {
		t.Errorf("decisions diverge:\n  a=%+v\n  b=%+v", a.dec, b.dec)
	}
	if a.delay != b.delay || a.sigma != b.sigma {
		t.Errorf("delay forecasts diverge: %v/%v vs %v/%v", a.delay, a.sigma, b.delay, b.sigma)
	}
}

// cycleKey is the timestamp-free projection of one fit→solve→admit cycle,
// used to compare runs bit-for-bit.
type cycleKey struct {
	fit     fit.RefitReport
	solveOK bool
	sigma   float64
	delay   float64
	admitOK bool
	dec     decision
}

func keyOf(h HistoryRecord) cycleKey {
	return cycleKey{fit: h.Fit, solveOK: h.SolveOK, sigma: h.Sigma,
		delay: h.DelaySeconds, admitOK: h.AdmitOK, dec: h.Decision}
}

// runPool drives nStreams sink-less streams through a shared pool with
// the given worker count, interleaving arrivals round-robin and
// spin-waiting each stream's cycle to completion so no cycle is dropped.
// It returns every stream's full decision history (mid-run cycles plus
// the final flush).
func runPool(t *testing.T, workers, nStreams int, seqs [][]float64) [][]cycleKey {
	t.Helper()
	cfg := testConfig(0)
	cfg.ListenAddrs = nil
	cfg.Workers = workers
	cfg.QueueDepth = nStreams
	cfg.applyDefaults()
	p := newPool(cfg.QueueDepth)
	streams := make([]*Stream, nStreams)
	for i := range streams {
		s, err := newStream(fmt.Sprintf("s%d", i), nil, &cfg, p, StreamOverride{})
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = s
	}
	p.start(workers)
	waitIdle := func(s *Stream) {
		deadline := time.Now().Add(30 * time.Second)
		for s.inflight.Load() {
			if time.Now().After(deadline) {
				t.Fatalf("stream %s fit cycle stuck in the pool", s.ID)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	idx := make([]int, nStreams)
	for done := false; !done; {
		done = true
		for i, s := range streams {
			if idx[i] >= len(seqs[i]) {
				continue
			}
			done = false
			s.ingest(seqs[i][idx[i]])
			idx[i]++
			if idx[i]%cfg.RefitEvery == 0 {
				// Every cycle must be processed, not dropped, for runs to
				// be comparable across worker counts.
				waitIdle(s)
			}
		}
	}
	p.close()
	out := make([][]cycleKey, nStreams)
	for i, s := range streams {
		s.flushFinal()
		for _, h := range s.history() {
			out[i] = append(out[i], keyOf(h))
		}
	}
	return out
}

// TestPoolWorkerCountDeterminism pins the acceptance contract for the
// shared pool: with the one-in-flight-per-stream gate, per-stream
// decision sequences are bit-identical at any worker count — a 2-worker
// pool over 3 streams reproduces the per-stream-worker baseline exactly,
// cycle by cycle.
func TestPoolWorkerCountDeterminism(t *testing.T) {
	const nStreams = 3
	seqs := make([][]float64, nStreams)
	for i := range seqs {
		seqs[i] = syntheticTimes(1000, int64(100+i))
	}
	baseline := runPool(t, nStreams, nStreams, seqs) // one worker per stream
	for _, workers := range []int{1, 2, 4} {
		got := runPool(t, workers, nStreams, seqs)
		for i := range got {
			if len(got[i]) != len(baseline[i]) {
				t.Fatalf("workers=%d stream %d: %d cycles, baseline has %d",
					workers, i, len(got[i]), len(baseline[i]))
			}
			for c := range got[i] {
				if got[i][c] != baseline[i][c] {
					t.Errorf("workers=%d stream %d cycle %d diverges from baseline:\n  got  %+v\n  want %+v",
						workers, i, c, got[i][c], baseline[i][c])
				}
			}
		}
	}
}

// TestSigmaChainResets pins the σ-chain hygiene: a >2× fitted-rate jump
// clears the warm-start before the solve, a failed solve clears it
// after, and a small rate move keeps the chain.
func TestSigmaChainResets(t *testing.T) {
	cfg := testConfig(0)
	cfg.ListenAddrs = nil
	cfg.applyDefaults()
	s, err := newStream("s0", nil, &cfg, newPool(1), StreamOverride{})
	if err != nil {
		t.Fatal(err)
	}
	cool := mmpp.MMPP2{R0: 50, R1: 200, Q01: 1, Q10: 1}
	var pub published
	s.solveAndAdmit(cool, &pub)
	if !pub.solveOK || s.warmSigma == 0 {
		t.Fatalf("baseline solve failed: %+v (warmSigma=%g)", pub, s.warmSigma)
	}

	// A small move (≤2×) keeps the chain: no reset counted.
	base := obsSigmaResets.Value()
	warm := mmpp.MMPP2{R0: 75, R1: 300, Q01: 1, Q10: 1}
	var pubWarm published
	s.solveAndAdmit(warm, &pubWarm)
	if got := obsSigmaResets.Value() - base; got != 0 {
		t.Errorf("1.5x rate move reset the sigma chain %d times, want 0", got)
	}

	// A >2× jump clears the chain (counted once), then re-seeds from the
	// fresh solve.
	base = obsSigmaResets.Value()
	hot := mmpp.MMPP2{R0: 500, R1: 2000, Q01: 1, Q10: 1}
	var pubHot published
	s.solveAndAdmit(hot, &pubHot)
	if got := obsSigmaResets.Value() - base; got != 1 {
		t.Errorf("4x rate jump reset the sigma chain %d times, want 1", got)
	}
	if !pubHot.solveOK || s.warmSigma != pubHot.sigma {
		t.Errorf("chain not re-seeded after the jump: warmSigma=%g pub=%+v", s.warmSigma, pubHot)
	}
	if s.lastRate != hot.MeanRate() {
		t.Errorf("lastRate = %g, want %g", s.lastRate, hot.MeanRate())
	}

	// A failed solve (fitted load unstable at the service rate) must not
	// seed the next cycle: the chain clears.
	su, err := newStream("s1", nil, &cfg, newPool(1), StreamOverride{ServiceRate: 10})
	if err != nil {
		t.Fatal(err)
	}
	su.warmSigma, su.lastRate = 0.5, cool.MeanRate()
	base = obsSigmaResets.Value()
	var pubErr published
	su.solveAndAdmit(cool, &pubErr) // mean rate ~125 against μ=10: unstable
	if pubErr.solveOK {
		t.Fatal("unstable load solved")
	}
	if su.warmSigma != 0 {
		t.Errorf("warmSigma = %g after solve error, want 0", su.warmSigma)
	}
	if got := obsSigmaResets.Value() - base; got != 1 {
		t.Errorf("solve error reset the sigma chain %d times, want 1", got)
	}
	if !pubErr.admitOK || pubErr.dec.Admit {
		t.Errorf("unstable load should deny with reason, got %+v", pubErr.dec)
	}
}

// TestHistoryRing pins the decision-history ring: fixed capacity, oldest
// cycles evicted first, records returned in chronological order.
func TestHistoryRing(t *testing.T) {
	cfg := testConfig(0)
	cfg.ListenAddrs = nil
	cfg.RefitEvery = 1 << 30 // cycles driven by flushFinal below
	cfg.HistorySize = 4
	cfg.applyDefaults()
	s, err := newStream("s0", nil, &cfg, newPool(1), StreamOverride{})
	if err != nil {
		t.Fatal(err)
	}
	times := syntheticTimes(2400, 3)
	for i := 0; i < 6; i++ {
		for _, sec := range times[i*400 : (i+1)*400] {
			s.ingest(sec)
		}
		s.flushFinal()
	}
	h := s.history()
	if len(h) != 4 {
		t.Fatalf("history holds %d records, want capacity 4", len(h))
	}
	// The retained records are the LAST four cycles, oldest first:
	// cumulative arrivals 1200, 1600, 2000, 2400.
	for i, want := range []int64{1200, 1600, 2000, 2400} {
		if h[i].Fit.Arrivals != want {
			t.Errorf("history[%d].Fit.Arrivals = %d, want %d", i, h[i].Fit.Arrivals, want)
		}
		if i > 0 && h[i].At.Before(h[i-1].At) {
			t.Errorf("history not chronological at %d: %v before %v", i, h[i].At, h[i-1].At)
		}
	}

	// Negative HistorySize disables the ring entirely.
	cfg2 := testConfig(0)
	cfg2.ListenAddrs = nil
	cfg2.RefitEvery = 1 << 30
	cfg2.HistorySize = -1
	cfg2.applyDefaults()
	s2, err := newStream("s1", nil, &cfg2, newPool(1), StreamOverride{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range times[:400] {
		s2.ingest(sec)
	}
	s2.flushFinal()
	if !s2.snapshot().hasFit {
		t.Fatal("no fit published")
	}
	if got := s2.history(); len(got) != 0 {
		t.Errorf("disabled history holds %d records, want 0", len(got))
	}
}

// TestDegradedModeSemantics pins the degraded contract: a
// budget-exhausted EM still publishes its best iterate, flagged, and the
// stream reads degraded instead of erroring.
func TestDegradedModeSemantics(t *testing.T) {
	cfg := testConfig(0)
	cfg.ListenAddrs = nil
	cfg.RefitEvery = 1 << 30
	cfg.EM = fit.EMOptions{MaxIter: 1}
	pub := runStreamOnce(t, cfg, syntheticTimes(3000, 7))
	if !pub.hasFit {
		t.Fatal("budget-exhausted fit was not published")
	}
	if pub.converged {
		t.Error("1-iteration EM on a rate mixture reports converged")
	}
	if !pub.fit.Converged == false && pub.fit.Converged {
		t.Error("report converged flag inconsistent")
	}
	// state() on a live stream object (not drained): degraded.
	cfg2 := testConfig(0)
	cfg2.ListenAddrs = nil
	cfg2.applyDefaults()
	s, err := newStream("sx", nil, &cfg2, newPool(1), StreamOverride{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.state(time.Now()); got != StateWarming {
		t.Errorf("fresh stream state = %q, want %q", got, StateWarming)
	}
	s.mu.Lock()
	s.pub = pub
	s.mu.Unlock()
	if got := s.state(time.Now()); got != StateDegraded {
		t.Errorf("state with unconverged fit = %q, want %q", got, StateDegraded)
	}
	// A converged but stale fit also degrades.
	pub.converged = true
	pub.solveOK = true
	pub.fitAt = time.Now().Add(-time.Hour)
	s.mu.Lock()
	s.pub = pub
	s.mu.Unlock()
	if got := s.state(time.Now()); got != StateDegraded {
		t.Errorf("state with stale fit = %q, want %q", got, StateDegraded)
	}
	pub.fitAt = time.Now()
	s.mu.Lock()
	s.pub = pub
	s.mu.Unlock()
	if got := s.state(time.Now()); got != StateLive {
		t.Errorf("state with fresh converged fit = %q, want %q", got, StateLive)
	}
}

// TestStreamOverrides pins the per-stream target/service-rate overrides:
// zero fields inherit the Config values, positive fields win.
func TestStreamOverrides(t *testing.T) {
	cfg := testConfig(0)
	cfg.ListenAddrs = nil
	cfg.applyDefaults()
	p := newPool(1)
	inherit, err := newStream("s0", nil, &cfg, p, StreamOverride{})
	if err != nil {
		t.Fatal(err)
	}
	if inherit.TargetDelay() != cfg.TargetDelay || inherit.ServiceRate() != cfg.ServiceRate {
		t.Errorf("zero override did not inherit: target=%g rate=%g", inherit.TargetDelay(), inherit.ServiceRate())
	}
	over, err := newStream("s1", nil, &cfg, p, StreamOverride{TargetDelay: 0.5, ServiceRate: 777})
	if err != nil {
		t.Fatal(err)
	}
	if over.TargetDelay() != 0.5 || over.ServiceRate() != 777 {
		t.Errorf("override not applied: target=%g rate=%g", over.TargetDelay(), over.ServiceRate())
	}
	// The override flows into the decision: the admission target in the
	// published decision is the stream's own.
	times := syntheticTimes(1000, 5)
	for _, sec := range times {
		over.ingest(sec)
	}
	over.flushFinal()
	pub := over.snapshot()
	if !pub.hasFit || !pub.admitOK {
		t.Fatalf("override stream did not decide: %+v", pub)
	}
	if pub.dec.Target != 0.5 {
		t.Errorf("decision target = %g, want the override 0.5", pub.dec.Target)
	}
}

// TestCtrlIngestAllocs extends the fit hot-path allocation contract to
// the daemon's ingest path: once the retention ring and job buffers have
// grown, a packet costs zero allocations — including the cycles that
// snapshot a window and hand it to the (busy) pool.
func TestCtrlIngestAllocs(t *testing.T) {
	cfg := testConfig(0)
	cfg.ListenAddrs = nil
	cfg.RefitEvery = 100
	cfg.Window = 2.0
	cfg.applyDefaults()
	p := newPool(1)
	s, err := newStream("s0", nil, &cfg, p, StreamOverride{})
	if err != nil {
		t.Fatal(err)
	}
	// No workers started: jobs pile up (queue cap 1) and further cycles
	// bounce off the inflight gate — exactly the busy-pool steady state,
	// with no concurrent goroutine to pollute the allocation counter.
	now := 0.0
	const dt = 1e-3
	ingestOne := func() {
		now += dt
		s.ingest(now)
	}
	// Grow everything: ring to peak occupancy (window/dt = 2000 retained)
	// and both job buffers through at least one fill each.
	for i := 0; i < 6000; i++ {
		ingestOne()
		if len(p.jobs) == 1 { // drain so the second buffer also cycles
			select {
			case j := <-p.jobs:
				j.s.free <- j
				j.s.inflight.Store(false)
			default:
			}
		}
	}
	if got := testing.AllocsPerRun(5000, ingestOne); got != 0 {
		t.Errorf("ingest allocates %v/op at steady state, want 0", got)
	}
}

// TestAggregateRecompute drives the controller-level fit/solve/admit
// cycle directly: the superposed process's mean rate is the exact sum of
// the per-stream fitted rates (the Kronecker-sum merge is exact, no
// re-fit), the merged decision is conservative over per-stream denials,
// and the state-space cap degrades instead of erroring.
func TestAggregateRecompute(t *testing.T) {
	cfg := testConfig(3)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		d.closeSinks()
		d.api.close()
	}()
	models := []mmpp.MMPP2{
		{R0: 50, R1: 200, Q01: 1, Q10: 1},
		{R0: 80, R1: 300, Q01: 2, Q10: 3},
		{R0: 10, R1: 40, Q01: 0.5, Q10: 0.5},
	}
	inject := func(i int, m mmpp.MMPP2, admit bool) {
		s := d.Streams()[i]
		s.mu.Lock()
		s.pub = published{
			hasFit: true, fitAt: time.Now(), converged: true,
			solveOK: true, admitOK: true,
			fit: fit.RefitReport{R0: m.R0, R1: m.R1, Q01: m.Q01, Q10: m.Q10},
			dec: decision{Admit: admit},
		}
		s.mu.Unlock()
	}
	for i, m := range models {
		inject(i, m, true)
	}
	d.recomputeAggregate(time.Now())
	pub := d.agg.snapshot()
	if !pub.ok || len(pub.streams) != 3 || pub.states != 8 {
		t.Fatalf("aggregate snapshot: %+v", pub)
	}
	wantRate := 0.0
	for _, m := range models {
		wantRate += m.MeanRate()
	}
	// The merged mean rate is exact — Kronecker-sum superposition with
	// the product-form stationary law, not an estimate.
	if math.Abs(pub.meanRate-wantRate) > 1e-12*wantRate {
		t.Errorf("aggregate mean rate = %.15g, want exact sum %.15g", pub.meanRate, wantRate)
	}
	if !pub.solveOK || !(pub.delay > 0) {
		t.Errorf("aggregate solve failed: %+v", pub)
	}
	if !pub.admitOK || !pub.dec.Admit || len(pub.denied) != 0 {
		t.Errorf("aggregate should admit (rho ~ %g): %+v", wantRate/cfg.ServiceRate, pub)
	}

	// One stream denying flips the merged decision, with provenance.
	inject(1, models[1], false)
	d.recomputeAggregate(time.Now())
	pub = d.agg.snapshot()
	if pub.dec.Admit {
		t.Error("aggregate admits while stream s1 denies")
	}
	if len(pub.denied) != 1 || pub.denied[0] != "s1" {
		t.Errorf("denied list = %v, want [s1]", pub.denied)
	}
	if !strings.Contains(pub.dec.Reason, "s1") {
		t.Errorf("deny reason does not name the stream: %q", pub.dec.Reason)
	}

	// Beyond the state cap the aggregate degrades with a reason.
	d.cfg.MaxAggregateStates = 4
	d.recomputeAggregate(time.Now())
	pub = d.agg.snapshot()
	if !pub.ok || pub.admitOK || pub.solveOK {
		t.Errorf("capped aggregate should degrade, not decide: %+v", pub)
	}
	if !strings.Contains(pub.solveMsg, "cap") {
		t.Errorf("cap degrade reason: %q", pub.solveMsg)
	}
}

// TestAPIEndpoints boots a full daemon, feeds one stream over UDP, and
// exercises the decision API schema end to end — per-stream, history,
// and aggregate endpoints.
func TestAPIEndpoints(t *testing.T) {
	cfg := testConfig(2)
	cfg.RefitEvery = 150
	cfg.Workers = 1 // shared pool across both streams
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()
	defer func() {
		cancel()
		<-runDone
	}()

	feedUDP(t, d.Streams()[0].Addr(), 1200, 20*time.Microsecond)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if pub := d.Streams()[0].snapshot(); pub.hasFit {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if pub := d.Streams()[0].snapshot(); !pub.hasFit {
		t.Fatal("stream s0 never published a fit")
	}

	base := "http://" + d.APIAddr()
	getJSON := func(path string, wantStatus int) map[string]any {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("GET %s = %d, want %d (%s)", path, resp.StatusCode, wantStatus, body)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		return m
	}

	dir := getJSON("/v1/streams", http.StatusOK)
	streams, ok := dir["streams"].([]any)
	if !ok || len(streams) != 2 {
		t.Fatalf("/v1/streams returned %v", dir)
	}
	row, _ := streams[0].(map[string]any)
	if _, ok := row["target_seconds"].(float64); !ok {
		t.Errorf("/v1/streams row missing target_seconds: %v", row)
	}

	fitResp := getJSON("/v1/streams/s0/fit", http.StatusOK)
	fm, ok := fitResp["fit"].(map[string]any)
	if !ok {
		t.Fatalf("/fit missing fit object: %v", fitResp)
	}
	for _, key := range []string{"window_rate", "window_c2", "cum_rate", "r0", "r1", "converged"} {
		if _, ok := fm[key]; !ok {
			t.Errorf("/fit report missing %q", key)
		}
	}

	delay := getJSON("/v1/streams/s0/delay", http.StatusOK)
	if _, ok := delay["delay_seconds"].(float64); !ok {
		t.Errorf("/delay missing delay_seconds: %v", delay)
	}

	admit := getJSON("/v1/streams/s0/admit", http.StatusOK)
	if _, ok := admit["admit"].(bool); !ok {
		t.Errorf("/admit missing admit flag: %v", admit)
	}
	if _, ok := admit["headroom"].(float64); !ok {
		t.Errorf("/admit missing headroom: %v", admit)
	}

	// The decision history carries at least the published cycle.
	hist := getJSON("/v1/streams/s0/history", http.StatusOK)
	recs, ok := hist["records"].([]any)
	if !ok || len(recs) == 0 {
		t.Fatalf("/history returned %v", hist)
	}
	rec, _ := recs[0].(map[string]any)
	for _, key := range []string{"at", "fit", "decision", "solve_ok"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("/history record missing %q", key)
		}
	}
	// A warming stream has an empty history, not an error.
	h1 := getJSON("/v1/streams/s1/history", http.StatusOK)
	if recs, ok := h1["records"].([]any); !ok || len(recs) != 0 {
		t.Errorf("warming stream history = %v, want empty records", h1)
	}

	// The aggregate recomputes on the daemon's tick once a fit exists.
	deadline = time.Now().Add(10 * time.Second)
	var agg map[string]any
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/aggregate/admit")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		time.Sleep(50 * time.Millisecond)
	}
	if agg == nil {
		t.Fatal("/v1/aggregate/admit never left warming")
	}
	if _, ok := agg["admit"].(bool); !ok {
		t.Errorf("/v1/aggregate/admit missing admit flag: %v", agg)
	}
	if got, _ := agg["states"].(float64); got != 2 {
		t.Errorf("aggregate states = %v, want 2 (one fitted stream)", agg["states"])
	}
	aggFit := getJSON("/v1/aggregate/fit", http.StatusOK)
	if rate, ok := aggFit["mean_rate"].(float64); !ok || !(rate > 0) {
		t.Errorf("/v1/aggregate/fit mean_rate = %v", aggFit["mean_rate"])
	}
	aggDelay := getJSON("/v1/aggregate/delay", http.StatusOK)
	if _, ok := aggDelay["delay_seconds"].(float64); !ok {
		t.Errorf("/v1/aggregate/delay missing delay_seconds: %v", aggDelay)
	}

	// The silent second stream is still warming: decisions 503.
	getJSON("/v1/streams/s1/admit", http.StatusServiceUnavailable)
	// Unknown streams 404.
	getJSON("/v1/streams/nope/fit", http.StatusNotFound)

	// The metrics exposition carries the hap_ctrl_ families, including
	// the pool and aggregate ones.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"hap_ctrl_streams", "hap_ctrl_refits_total", "hap_ctrl_arrivals_total",
		"hap_ctrl_pool_workers", "hap_ctrl_pool_jobs_total",
		"hap_ctrl_aggregate_streams", "hap_ctrl_aggregate_solves_total",
		"hap_ctrl_sigma_warm_resets_total",
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}

// TestConfigValidation pins the required-field errors.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{ServiceRate: 1, TargetDelay: 1}); err == nil {
		t.Error("no listen address accepted")
	}
	if _, err := New(Config{ListenAddrs: []string{"127.0.0.1:0"}, TargetDelay: 1}); err == nil {
		t.Error("zero service rate accepted")
	}
	if _, err := New(Config{ListenAddrs: []string{"127.0.0.1:0"}, ServiceRate: 1}); err == nil {
		t.Error("zero target delay accepted")
	}
	if _, err := New(Config{ListenAddrs: []string{"not-an-addr"}, ServiceRate: 1, TargetDelay: 1}); err == nil {
		t.Error("bad listen address accepted")
	}
	if _, err := New(Config{ListenAddrs: []string{"127.0.0.1:0"}, ServiceRate: 1, TargetDelay: 1,
		Overrides: []StreamOverride{{}, {}}}); err == nil {
		t.Error("more overrides than streams accepted")
	}
	if _, err := New(Config{ListenAddrs: []string{"127.0.0.1:0"}, ServiceRate: 1, TargetDelay: 1,
		Overrides: []StreamOverride{{TargetDelay: -1}}}); err == nil {
		t.Error("negative override accepted")
	}
}
