package ctrl

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hap/internal/fit"
	"hap/internal/netgen"
)

// testConfig is a daemon config sized for fast tests: tiny refit cadence,
// generous service rate, short idle chunks.
func testConfig(listeners int) Config {
	addrs := make([]string, listeners)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return Config{
		ListenAddrs: addrs,
		ServiceRate: 1e5,
		TargetDelay: 0.01,
		RefitEvery:  200,
		Window:      1e9,
		MinWindow:   8,
		IdleChunk:   50 * time.Millisecond,
	}
}

// feedUDP writes n crafted packets to addr, pacing them with gap.
func feedUDP(t *testing.T, addr string, n int, gap time.Duration) {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for seq := uint64(1); seq <= uint64(n); seq++ {
		if _, err := conn.Write(netgen.Packet{Seq: seq}.Encode(nil)); err != nil {
			t.Fatal(err)
		}
		if gap > 0 {
			time.Sleep(gap)
		}
	}
}

// syntheticTimes builds a deterministic bursty arrival sequence (a
// two-rate mixture), the same input the determinism test feeds twice.
func syntheticTimes(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, n)
	now := 0.0
	for i := 0; i < n; i++ {
		rate := 50.0
		if i >= n/2 {
			rate = 500.0
		}
		now += rng.ExpFloat64() / rate
		out = append(out, now)
	}
	return out
}

// runStreamOnce ingests times into a fresh sink-less stream, flushes the
// final fit synchronously, and returns the published state.
func runStreamOnce(t *testing.T, cfg Config, times []float64) published {
	t.Helper()
	cfg.applyDefaults()
	s, err := newStream("s0", nil, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range times {
		s.ingest(sec)
	}
	s.flushFinal()
	close(s.jobs)
	var wg sync.WaitGroup
	wg.Add(1)
	s.worker(&wg)
	wg.Wait()
	return s.snapshot()
}

// TestDaemonSIGTERMDrain delivers a real SIGTERM mid-ingest and asserts
// the daemon drains: Run returns nil, every stream flushes a final fit,
// and the sockets are gone. Run under -race this also shakes out ingest /
// worker / API data races.
func TestDaemonSIGTERMDrain(t *testing.T) {
	cfg := testConfig(2)
	cfg.RefitEvery = 1000 // keep mid-run refits rare; the drain flush is the point
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()

	// Enough packets on both streams to make the final fit meaningful.
	for _, s := range d.Streams() {
		feedUDP(t, s.Addr(), 300, 20*time.Microsecond)
	}
	// Keep traffic flowing while the signal lands.
	senderCtx, stopSender := context.WithCancel(context.Background())
	defer stopSender()
	var senderWG sync.WaitGroup
	senderWG.Add(1)
	go func() {
		defer senderWG.Done()
		conn, err := net.Dial("udp", d.Streams()[0].Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		for seq := uint64(1000); senderCtx.Err() == nil; seq++ {
			conn.Write(netgen.Packet{Seq: seq}.Encode(nil))
			time.Sleep(100 * time.Microsecond)
		}
	}()
	// Let ingest observe some of the live traffic, then signal.
	deadline := time.Now().Add(5 * time.Second)
	for d.Streams()[0].arrivals.Load() < 400 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	stopSender()
	senderWG.Wait()
	for _, s := range d.Streams() {
		if got := s.state(time.Now()); got != StateClosed {
			t.Errorf("stream %s state after drain = %q, want %q", s.ID, got, StateClosed)
		}
		pub := s.snapshot()
		if !pub.hasFit {
			t.Errorf("stream %s drained without flushing a final fit (%d arrivals)", s.ID, s.arrivals.Load())
		}
	}
}

// TestMultiStreamDeterminism pins the decision contract: identical
// arrival sequences produce identical fits and decisions, independent of
// which stream carried them. Mid-run refit cycles are allowed to be
// skipped under load (nondeterministic), so the test exercises the
// deterministic path the contract covers: the drain-time flush.
func TestMultiStreamDeterminism(t *testing.T) {
	cfg := testConfig(0)
	cfg.ListenAddrs = nil
	cfg.RefitEvery = 1 << 30 // only the final flush fits
	times := syntheticTimes(3000, 42)

	a := runStreamOnce(t, cfg, times)
	b := runStreamOnce(t, cfg, times)
	if !a.hasFit || !b.hasFit {
		t.Fatal("no fit published")
	}
	if a.fit != b.fit {
		t.Errorf("fits diverge:\n  a=%+v\n  b=%+v", a.fit, b.fit)
	}
	if a.dec != b.dec {
		t.Errorf("decisions diverge:\n  a=%+v\n  b=%+v", a.dec, b.dec)
	}
	if a.delay != b.delay || a.sigma != b.sigma {
		t.Errorf("delay forecasts diverge: %v/%v vs %v/%v", a.delay, a.sigma, b.delay, b.sigma)
	}
}

// TestDegradedModeSemantics pins the degraded contract: a
// budget-exhausted EM still publishes its best iterate, flagged, and the
// stream reads degraded instead of erroring.
func TestDegradedModeSemantics(t *testing.T) {
	cfg := testConfig(0)
	cfg.ListenAddrs = nil
	cfg.RefitEvery = 1 << 30
	cfg.EM = fit.EMOptions{MaxIter: 1}
	pub := runStreamOnce(t, cfg, syntheticTimes(3000, 7))
	if !pub.hasFit {
		t.Fatal("budget-exhausted fit was not published")
	}
	if pub.converged {
		t.Error("1-iteration EM on a rate mixture reports converged")
	}
	if !pub.fit.Converged == false && pub.fit.Converged {
		t.Error("report converged flag inconsistent")
	}
	// state() on a live stream object (not drained): degraded.
	cfg2 := testConfig(0)
	cfg2.ListenAddrs = nil
	cfg2.applyDefaults()
	s, err := newStream("sx", nil, &cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.state(time.Now()); got != StateWarming {
		t.Errorf("fresh stream state = %q, want %q", got, StateWarming)
	}
	s.mu.Lock()
	s.pub = pub
	s.mu.Unlock()
	if got := s.state(time.Now()); got != StateDegraded {
		t.Errorf("state with unconverged fit = %q, want %q", got, StateDegraded)
	}
	// A converged but stale fit also degrades.
	pub.converged = true
	pub.solveOK = true
	pub.fitAt = time.Now().Add(-time.Hour)
	s.mu.Lock()
	s.pub = pub
	s.mu.Unlock()
	if got := s.state(time.Now()); got != StateDegraded {
		t.Errorf("state with stale fit = %q, want %q", got, StateDegraded)
	}
	pub.fitAt = time.Now()
	s.mu.Lock()
	s.pub = pub
	s.mu.Unlock()
	if got := s.state(time.Now()); got != StateLive {
		t.Errorf("state with fresh converged fit = %q, want %q", got, StateLive)
	}
}

// TestCtrlIngestAllocs extends the fit hot-path allocation contract to
// the daemon's ingest path: once the retention ring and job buffers have
// grown, a packet costs zero allocations — including the cycles that
// snapshot a window and hand it to the (busy) worker.
func TestCtrlIngestAllocs(t *testing.T) {
	cfg := testConfig(0)
	cfg.ListenAddrs = nil
	cfg.RefitEvery = 100
	cfg.Window = 2.0
	cfg.applyDefaults()
	s, err := newStream("s0", nil, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No worker: jobs pile up (cap 1) and further cycles bounce off the
	// full queue — exactly the busy-worker steady state, with no
	// concurrent goroutine to pollute the allocation counter.
	now := 0.0
	const dt = 1e-3
	ingestOne := func() {
		now += dt
		s.ingest(now)
	}
	// Grow everything: ring to peak occupancy (window/dt = 2000 retained)
	// and both job buffers through at least one fill each.
	for i := 0; i < 6000; i++ {
		ingestOne()
		if len(s.jobs) == 1 { // drain so the second buffer also cycles
			select {
			case j := <-s.jobs:
				s.free <- j
			default:
			}
		}
	}
	if got := testing.AllocsPerRun(5000, ingestOne); got != 0 {
		t.Errorf("ingest allocates %v/op at steady state, want 0", got)
	}
}

// TestAPIEndpoints boots a full daemon, feeds one stream over UDP, and
// exercises the decision API schema end to end.
func TestAPIEndpoints(t *testing.T) {
	cfg := testConfig(2)
	cfg.RefitEvery = 150
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()
	defer func() {
		cancel()
		<-runDone
	}()

	feedUDP(t, d.Streams()[0].Addr(), 1200, 20*time.Microsecond)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if pub := d.Streams()[0].snapshot(); pub.hasFit {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if pub := d.Streams()[0].snapshot(); !pub.hasFit {
		t.Fatal("stream s0 never published a fit")
	}

	base := "http://" + d.APIAddr()
	getJSON := func(path string, wantStatus int) map[string]any {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("GET %s = %d, want %d (%s)", path, resp.StatusCode, wantStatus, body)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		return m
	}

	dir := getJSON("/v1/streams", http.StatusOK)
	streams, ok := dir["streams"].([]any)
	if !ok || len(streams) != 2 {
		t.Fatalf("/v1/streams returned %v", dir)
	}

	fitResp := getJSON("/v1/streams/s0/fit", http.StatusOK)
	fm, ok := fitResp["fit"].(map[string]any)
	if !ok {
		t.Fatalf("/fit missing fit object: %v", fitResp)
	}
	for _, key := range []string{"window_rate", "window_c2", "cum_rate", "r0", "r1", "converged"} {
		if _, ok := fm[key]; !ok {
			t.Errorf("/fit report missing %q", key)
		}
	}

	delay := getJSON("/v1/streams/s0/delay", http.StatusOK)
	if _, ok := delay["delay_seconds"].(float64); !ok {
		t.Errorf("/delay missing delay_seconds: %v", delay)
	}

	admit := getJSON("/v1/streams/s0/admit", http.StatusOK)
	if _, ok := admit["admit"].(bool); !ok {
		t.Errorf("/admit missing admit flag: %v", admit)
	}
	if _, ok := admit["headroom"].(float64); !ok {
		t.Errorf("/admit missing headroom: %v", admit)
	}

	// The silent second stream is still warming: decisions 503.
	getJSON("/v1/streams/s1/admit", http.StatusServiceUnavailable)
	// Unknown streams 404.
	getJSON("/v1/streams/nope/fit", http.StatusNotFound)

	// The metrics exposition carries the hap_ctrl_ families.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{"hap_ctrl_streams", "hap_ctrl_refits_total", "hap_ctrl_arrivals_total"} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}

// TestConfigValidation pins the required-field errors.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{ServiceRate: 1, TargetDelay: 1}); err == nil {
		t.Error("no listen address accepted")
	}
	if _, err := New(Config{ListenAddrs: []string{"127.0.0.1:0"}, TargetDelay: 1}); err == nil {
		t.Error("zero service rate accepted")
	}
	if _, err := New(Config{ListenAddrs: []string{"127.0.0.1:0"}, ServiceRate: 1}); err == nil {
		t.Error("zero target delay accepted")
	}
	if _, err := New(Config{ListenAddrs: []string{"not-an-addr"}, ServiceRate: 1, TargetDelay: 1}); err == nil {
		t.Error("bad listen address accepted")
	}
}
