package ctrl

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"hap/internal/admission"
	"hap/internal/gm1"
	"hap/internal/haperr"
	"hap/internal/mmpp"
)

// aggPublished is the aggregate state visible to the HTTP layer,
// replaced wholesale under the mutex by recomputeAggregate.
type aggPublished struct {
	ok      bool // at least one stream has a fit
	at      time.Time
	streams []string // contributing stream IDs, in ID order
	denied  []string // contributing streams whose own decision denies
	states  int      // product modulating-chain size (2^streams)

	meanRate float64
	solveOK  bool
	sigma    float64
	rho      float64
	delay    float64
	solveMsg string

	admitOK bool
	dec     decision
}

// aggregate is the controller-level fit/solve/admit cycle over the
// superposition of the per-stream fitted processes. The paper's
// admission story is about the merged workload: HAP itself is a
// superposition of per-user sources, and the admissible workload is a
// property of the merged arrival process, not any single stream. The
// merge is exact — Kronecker-sum superposition of the fitted MMPP2s
// (mmpp.SuperposeMMPP2) with the k-state interarrival transform solved
// through internal/linalg — so no re-fit of the merged stream is
// needed. recomputeAggregate runs on the daemon's tick goroutine only;
// warmSigma/lastRate are its private chain.
type aggregate struct {
	warmSigma float64
	lastRate  float64

	mu  sync.Mutex
	pub aggPublished
}

func (a *aggregate) snapshot() aggPublished {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pub
}

// recomputeAggregate rebuilds the superposed process from the latest
// per-stream fits and re-runs the solve/admit cycle on it. The merged
// decision is conservative: admit only if the aggregate headroom and
// every contributing stream's own decision admit.
func (d *Daemon) recomputeAggregate(now time.Time) {
	var models []mmpp.MMPP2
	pub := aggPublished{at: now}
	for _, s := range d.streams {
		sp := s.snapshot()
		if !sp.hasFit {
			continue
		}
		models = append(models, mmpp.MMPP2{
			R0: sp.fit.R0, R1: sp.fit.R1, Q01: sp.fit.Q01, Q10: sp.fit.Q10,
		})
		pub.streams = append(pub.streams, s.ID)
		if !sp.admitOK || !sp.dec.Admit {
			pub.denied = append(pub.denied, s.ID)
		}
	}
	obsAggStreams.Set(int64(len(pub.streams)))
	if len(models) == 0 {
		d.agg.publish(pub)
		return
	}
	pub.ok = true
	pub.states = 1 << len(models)
	obsAggStates.Set(int64(pub.states))
	if pub.states > d.cfg.MaxAggregateStates {
		pub.solveMsg = fmt.Sprintf("aggregate chain needs %d states, cap is %d — raise MaxAggregateStates or fit the merged stream",
			pub.states, d.cfg.MaxAggregateStates)
		obsAggSolveErrors.Inc()
		d.agg.publish(pub)
		return
	}
	d.solveAggregate(models, &pub)
	d.agg.publish(pub)
}

func (a *aggregate) publish(pub aggPublished) {
	a.mu.Lock()
	a.pub = pub
	a.mu.Unlock()
}

// solveAggregate is the aggregate twin of Stream.solveAndAdmit: exact
// LST of the superposed fitted process, warm-started σ solve at the
// global service rate, headroom bisection, conservative merge with the
// per-stream decisions.
func (d *Daemon) solveAggregate(models []mmpp.MMPP2, pub *aggPublished) {
	sup, err := mmpp.SuperposeMMPP2(models...)
	if err != nil {
		obsAggSolveErrors.Inc()
		pub.solveMsg = err.Error()
		return
	}
	lap, err := sup.InterarrivalLaplace()
	if err != nil {
		obsAggSolveErrors.Inc()
		pub.solveMsg = err.Error()
		return
	}
	lam, err := sup.MeanRate()
	if err != nil {
		obsAggSolveErrors.Inc()
		pub.solveMsg = err.Error()
		return
	}
	pub.meanRate = lam
	// Same σ-chain hygiene as the per-stream path: clear on large
	// aggregate-rate jumps and on solve failure.
	if d.agg.warmSigma != 0 && d.agg.lastRate > 0 &&
		(lam > 2*d.agg.lastRate || lam < d.agg.lastRate/2) {
		d.agg.warmSigma = 0
		obsSigmaResets.Inc()
	}
	d.agg.lastRate = lam
	res, err := gm1.Solve(gm1.Laplace(lap), lam, d.cfg.ServiceRate,
		&gm1.Options{Method: d.cfg.Method, WarmSigma: d.agg.warmSigma})
	obsAggSolves.Inc()
	if err != nil {
		obsAggSolveErrors.Inc()
		d.agg.warmSigma = 0
		pub.solveMsg = err.Error()
		if errors.Is(err, haperr.ErrUnstable) {
			pub.admitOK = true
			pub.dec = decision{Admit: false, Target: d.cfg.TargetDelay,
				Reason: "aggregate fitted load unstable at the configured service rate"}
			obsAggDenied.Inc()
		}
		return
	}
	d.agg.warmSigma = res.Sigma
	pub.solveOK = true
	pub.sigma, pub.rho, pub.delay = res.Sigma, res.Rho, res.Delay

	// The headroom bisection scales the merged process's rates in place
	// (the modulator — hence its stationary law — is unchanged), so
	// each evaluation reuses the product chain.
	laplaceAt := func(f float64) gm1.Laplace {
		l, err := sup.ScaleRates(f).InterarrivalLaplace()
		if err != nil {
			return func(float64) float64 { return 1 } // rejected by the solver as trivial
		}
		return gm1.Laplace(l)
	}
	rateAt := func(f float64) float64 { return f * lam }
	scale, _, err := admission.MaxScale(laplaceAt, rateAt,
		d.cfg.ServiceRate, d.cfg.TargetDelay, d.cfg.FMax, 0)
	pub.admitOK = true
	switch {
	case errors.Is(err, admission.ErrInfeasible):
		pub.dec = decision{Admit: false, Target: d.cfg.TargetDelay,
			Delay: res.Delay, Reason: "target delay infeasible for the superposed fitted process"}
	case err != nil:
		pub.admitOK = false
		pub.solveMsg = err.Error()
	default:
		pub.dec = decision{
			Admit:    scale >= 1 && len(pub.denied) == 0,
			Headroom: scale,
			Delay:    res.Delay,
			Target:   d.cfg.TargetDelay,
		}
		switch {
		case scale < 1 && len(pub.denied) > 0:
			pub.dec.Reason = "aggregate load exceeds the admissible workload; streams denying: " +
				strings.Join(pub.denied, ",")
		case scale < 1:
			pub.dec.Reason = "aggregate load exceeds the admissible workload for the delay target"
		case len(pub.denied) > 0:
			pub.dec.Reason = "aggregate headroom suffices but per-stream targets deny: " +
				strings.Join(pub.denied, ",")
		}
	}
	if pub.admitOK {
		if pub.dec.Admit {
			obsAggAllowed.Inc()
		} else {
			obsAggDenied.Inc()
		}
	}
}
