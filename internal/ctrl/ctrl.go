package ctrl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hap/internal/fit"
	"hap/internal/gm1"
	"hap/internal/haperr"
	"hap/internal/netgen"
)

// noCancel is the fit/solve context: drain must still flush final fits
// after the run context is cancelled, and every stage is bounded by its
// own iteration budget.
var noCancel = context.Background()

// StreamOverride overrides the global delay target and service rate for
// one stream; zero fields inherit the Config values.
type StreamOverride struct {
	TargetDelay float64
	ServiceRate float64
}

// Config parameterises a Daemon. ListenAddrs, ServiceRate and
// TargetDelay are required; everything else defaults.
type Config struct {
	// ListenAddrs binds one UDP sink per address ("127.0.0.1:0" picks a
	// free port). Stream IDs are s0, s1, … in this order.
	ListenAddrs []string
	// Overrides aligns with ListenAddrs: Overrides[i] adjusts stream
	// s<i>'s delay target and/or service rate. May be nil or shorter
	// than ListenAddrs; zero fields inherit the global values.
	Overrides []StreamOverride
	// HTTPAddr serves the decision API and /metrics (default
	// "127.0.0.1:0").
	HTTPAddr string
	// ServiceRate is the message service rate μ'' the delay solves and
	// admission bound assume (per stream unless overridden; always the
	// aggregate's rate).
	ServiceRate float64
	// TargetDelay is the admission delay target in seconds (per stream
	// unless overridden; always the aggregate's target).
	TargetDelay float64
	// FMax caps the admission headroom search (default 4).
	FMax float64
	// RefitEvery re-fits a stream every N arrivals (default 2000).
	RefitEvery int
	// Window is the sliding fit window in seconds (default 30).
	Window float64
	// MinWindow is the fewest retained timestamps worth fitting
	// (default 64, floor 8 — the EM minimum).
	MinWindow int
	// StaleAfter flags decisions whose fit is older than this as
	// degraded (default 4× the expected refit interval is unknowable
	// without the rate, so: 30s). <= 0 disables staleness tracking.
	StaleAfter time.Duration
	// Workers sizes the shared fit-worker pool (default: one per
	// stream, the per-stream-worker baseline; thousands of streams want
	// far fewer workers than streams).
	Workers int
	// QueueDepth bounds the shared snapshot queue (default: one slot
	// per stream — with the one-in-flight-per-stream gate that depth
	// never rejects; shrink it to shed load earlier).
	QueueDepth int
	// HistorySize is the per-stream decision history ring capacity
	// (default 64; 0 keeps the default, negative disables history).
	HistorySize int
	// MaxAggregateStates caps the superposed modulating chain (2 states
	// per fitted stream, so 2^streams). Beyond the cap the aggregate
	// endpoints degrade with a reason instead of burning O(n³) per
	// transform evaluation (default 256 = 8 streams).
	MaxAggregateStates int
	// Method selects the G/M/1 σ solver.
	Method gm1.Method
	// EM tunes the per-stream refitters.
	EM fit.EMOptions
	// IdleChunk bounds one Collect call so the ingest loop re-checks
	// its context (default 250ms). Tests shrink it.
	IdleChunk time.Duration
}

func (c *Config) validate() error {
	if len(c.ListenAddrs) == 0 {
		return haperr.Badf("ctrl: at least one listen address is required")
	}
	if !(c.ServiceRate > 0) {
		return haperr.Badf("ctrl: service rate must be positive (got %g)", c.ServiceRate)
	}
	if !(c.TargetDelay > 0) {
		return haperr.Badf("ctrl: target delay must be positive (got %g)", c.TargetDelay)
	}
	if len(c.Overrides) > len(c.ListenAddrs) {
		return haperr.Badf("ctrl: %d overrides for %d streams", len(c.Overrides), len(c.ListenAddrs))
	}
	for i, ov := range c.Overrides {
		if ov.TargetDelay < 0 || ov.ServiceRate < 0 {
			return haperr.Badf("ctrl: override %d must be non-negative (%+v)", i, ov)
		}
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.HTTPAddr == "" {
		c.HTTPAddr = "127.0.0.1:0"
	}
	if c.FMax <= 0 {
		c.FMax = 4
	}
	if c.RefitEvery <= 0 {
		c.RefitEvery = 2000
	}
	if c.Window <= 0 {
		c.Window = 30
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 64
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 30 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = len(c.ListenAddrs)
		if c.Workers == 0 {
			c.Workers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = len(c.ListenAddrs)
		if c.QueueDepth == 0 {
			c.QueueDepth = 1
		}
	}
	switch {
	case c.HistorySize == 0:
		c.HistorySize = 64
	case c.HistorySize < 0:
		c.HistorySize = 0
	}
	if c.MaxAggregateStates <= 0 {
		c.MaxAggregateStates = 256
	}
	if c.IdleChunk <= 0 {
		c.IdleChunk = 250 * time.Millisecond
	}
}

func (c *Config) minWindow() int {
	if c.MinWindow < 8 {
		return 8
	}
	return c.MinWindow
}

// pool is the shared fit-worker pool: a bounded queue of window
// snapshots drained by a fixed number of workers. Streams enqueue
// without blocking — a full queue rejects the job — and each stream has
// at most one job in the pool (the inflight gate), so per-stream
// processing is serial and ordered no matter how many workers run.
type pool struct {
	jobs chan *refitJob
	wg   sync.WaitGroup
	// fitGen counts published fits; the aggregate loop recomputes when
	// it moves.
	fitGen atomic.Uint64
}

func newPool(depth int) *pool {
	return &pool{jobs: make(chan *refitJob, depth)}
}

// start launches the workers. Call at most once.
func (p *pool) start(workers int) {
	obsPoolWorkers.Set(int64(workers))
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		obsPoolDepth.Set(int64(len(p.jobs)))
		s := j.s
		s.processJob(j)
		select {
		case s.free <- j:
		default:
		}
		s.inflight.Store(false)
	}
}

// enqueue offers a job to the pool without blocking.
func (p *pool) enqueue(j *refitJob) bool {
	select {
	case p.jobs <- j:
		obsPoolJobs.Inc()
		obsPoolDepth.Set(int64(len(p.jobs)))
		return true
	default:
		obsPoolRejects.Inc()
		return false
	}
}

// close drains the pool: the queue closes, workers run it dry and exit.
func (p *pool) close() {
	close(p.jobs)
	p.wg.Wait()
	obsPoolWorkers.Set(0)
	obsPoolDepth.Set(0)
}

// Daemon owns the streams, the fit-worker pool, the aggregate cycle,
// and the HTTP API.
type Daemon struct {
	cfg     Config
	streams []*Stream
	pool    *pool
	agg     aggregate
	api     *apiServer
}

// New binds every sink and the HTTP listener, so address errors surface
// before any goroutine starts. Run starts the loops.
func New(cfg Config) (*Daemon, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	d := &Daemon{cfg: cfg}
	d.pool = newPool(cfg.QueueDepth)
	for i, addr := range cfg.ListenAddrs {
		sink, err := netgen.NewSink(addr)
		if err != nil {
			d.closeSinks()
			return nil, err
		}
		var ov StreamOverride
		if i < len(cfg.Overrides) {
			ov = cfg.Overrides[i]
		}
		st, err := newStream(fmt.Sprintf("s%d", i), sink, &d.cfg, d.pool, ov)
		if err != nil {
			sink.Close()
			d.closeSinks()
			return nil, err
		}
		d.streams = append(d.streams, st)
	}
	api, err := newAPIServer(d, cfg.HTTPAddr)
	if err != nil {
		d.closeSinks()
		return nil, err
	}
	d.api = api
	return d, nil
}

// closeSinks closes every bound socket and marks the streams draining:
// from this moment state() deterministically reports closed — no more
// arrivals are possible, only the drain's final flush remains.
func (d *Daemon) closeSinks() {
	for _, s := range d.streams {
		s.sink.Close()
		s.draining.Store(true)
	}
}

// Streams returns the daemon's streams in ID order.
func (d *Daemon) Streams() []*Stream { return d.streams }

// APIAddr returns the bound HTTP address.
func (d *Daemon) APIAddr() string { return d.api.addr() }

// Run ingests until ctx is cancelled, then drains: sinks close (streams
// report closed from here on), ingest goroutines finish, the pool runs
// its queue dry, each stream flushes one final synchronous fit over
// whatever its window holds, the aggregate recomputes once over the
// final fits, and the API stops. A cancelled context is the normal
// shutdown path and returns nil.
func (d *Daemon) Run(ctx context.Context) error {
	obsStreams.Set(int64(len(d.streams)))
	defer obsStreams.Set(0)

	d.pool.start(d.cfg.Workers)
	var ingestWG sync.WaitGroup
	for _, s := range d.streams {
		ingestWG.Add(1)
		go func(s *Stream) {
			defer ingestWG.Done()
			d.ingestLoop(ctx, s)
		}(s)
	}

	// Staleness gauge and aggregate recompute: cheap scans, coarse
	// cadence, re-solved only when a stream published a new fit.
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	var lastGen uint64
	for done := false; !done; {
		select {
		case <-ctx.Done():
			done = true
		case now := <-tick.C:
			d.updateFitAge(now)
			if gen := d.pool.fitGen.Load(); gen != lastGen {
				lastGen = gen
				d.recomputeAggregate(now)
			}
		}
	}

	// Drain: stop the sockets (Collect returns ErrSinkClosed), wait for
	// ingest to stop touching the TraceStats, let the pool run its
	// queue dry, flush final fits synchronously in stream order, then
	// stop the API.
	d.closeSinks()
	ingestWG.Wait()
	d.pool.close()
	for _, s := range d.streams {
		s.flushFinal()
		s.closed.Store(true)
	}
	d.recomputeAggregate(time.Now())
	d.api.close()
	return nil
}

// ingestLoop re-enters Collect until shutdown. Collect returns on idle
// gaps (IdleChunk) so the loop stays responsive to ctx even on a silent
// stream; a closed sink is the drain signal.
func (d *Daemon) ingestLoop(ctx context.Context, s *Stream) {
	for {
		_, err := s.sink.Collect(ctx, 0, d.cfg.IdleChunk)
		switch {
		case errors.Is(err, netgen.ErrSinkClosed):
			return
		case err != nil:
			obsIngestErrors.Inc()
			return
		}
		if ctx.Err() != nil {
			// Keep draining packets until the sink closes: Collect exits
			// on ctx deadline mid-read, but the drain path owns shutdown.
			return
		}
	}
}

// updateFitAge publishes the oldest fit age across streams.
func (d *Daemon) updateFitAge(now time.Time) {
	maxAge := 0.0
	for _, s := range d.streams {
		pub := s.snapshot()
		if !pub.hasFit {
			continue
		}
		if age := now.Sub(pub.fitAt).Seconds(); age > maxAge {
			maxAge = age
		}
	}
	obsFitAgeMax.Set(maxAge)
}
