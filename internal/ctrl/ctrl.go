package ctrl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hap/internal/fit"
	"hap/internal/gm1"
	"hap/internal/haperr"
	"hap/internal/netgen"
)

// noCancel is the fit/solve context: drain must still flush final fits
// after the run context is cancelled, and every stage is bounded by its
// own iteration budget.
var noCancel = context.Background()

// Config parameterises a Daemon. ListenAddrs, ServiceRate and
// TargetDelay are required; everything else defaults.
type Config struct {
	// ListenAddrs binds one UDP sink per address ("127.0.0.1:0" picks a
	// free port). Stream IDs are s0, s1, … in this order.
	ListenAddrs []string
	// HTTPAddr serves the decision API and /metrics (default
	// "127.0.0.1:0").
	HTTPAddr string
	// ServiceRate is the message service rate μ'' the delay solves and
	// admission bound assume.
	ServiceRate float64
	// TargetDelay is the admission delay target in seconds.
	TargetDelay float64
	// FMax caps the admission headroom search (default 4).
	FMax float64
	// RefitEvery re-fits a stream every N arrivals (default 2000).
	RefitEvery int
	// Window is the sliding fit window in seconds (default 30).
	Window float64
	// MinWindow is the fewest retained timestamps worth fitting
	// (default 64, floor 8 — the EM minimum).
	MinWindow int
	// StaleAfter flags decisions whose fit is older than this as
	// degraded (default 4× the expected refit interval is unknowable
	// without the rate, so: 30s). <= 0 disables staleness tracking.
	StaleAfter time.Duration
	// Method selects the G/M/1 σ solver.
	Method gm1.Method
	// EM tunes the per-stream refitters.
	EM fit.EMOptions
	// IdleChunk bounds one Collect call so the ingest loop re-checks
	// its context (default 250ms). Tests shrink it.
	IdleChunk time.Duration
}

func (c *Config) validate() error {
	if len(c.ListenAddrs) == 0 {
		return haperr.Badf("ctrl: at least one listen address is required")
	}
	if !(c.ServiceRate > 0) {
		return haperr.Badf("ctrl: service rate must be positive (got %g)", c.ServiceRate)
	}
	if !(c.TargetDelay > 0) {
		return haperr.Badf("ctrl: target delay must be positive (got %g)", c.TargetDelay)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.HTTPAddr == "" {
		c.HTTPAddr = "127.0.0.1:0"
	}
	if c.FMax <= 0 {
		c.FMax = 4
	}
	if c.RefitEvery <= 0 {
		c.RefitEvery = 2000
	}
	if c.Window <= 0 {
		c.Window = 30
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 64
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 30 * time.Second
	}
	if c.IdleChunk <= 0 {
		c.IdleChunk = 250 * time.Millisecond
	}
}

func (c *Config) minWindow() int {
	if c.MinWindow < 8 {
		return 8
	}
	return c.MinWindow
}

// Daemon owns the streams, their goroutines, and the HTTP API.
type Daemon struct {
	cfg     Config
	streams []*Stream
	api     *apiServer
}

// New binds every sink and the HTTP listener, so address errors surface
// before any goroutine starts. Run starts the loops.
func New(cfg Config) (*Daemon, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	d := &Daemon{cfg: cfg}
	for i, addr := range cfg.ListenAddrs {
		sink, err := netgen.NewSink(addr)
		if err != nil {
			d.closeSinks()
			return nil, err
		}
		st, err := newStream(fmt.Sprintf("s%d", i), sink, &d.cfg)
		if err != nil {
			sink.Close()
			d.closeSinks()
			return nil, err
		}
		d.streams = append(d.streams, st)
	}
	api, err := newAPIServer(d, cfg.HTTPAddr)
	if err != nil {
		d.closeSinks()
		return nil, err
	}
	d.api = api
	return d, nil
}

func (d *Daemon) closeSinks() {
	for _, s := range d.streams {
		s.sink.Close()
	}
}

// Streams returns the daemon's streams in ID order.
func (d *Daemon) Streams() []*Stream { return d.streams }

// APIAddr returns the bound HTTP address.
func (d *Daemon) APIAddr() string { return d.api.addr() }

// Run ingests until ctx is cancelled, then drains: sinks close, ingest
// goroutines finish, each stream flushes one final fit over whatever its
// window holds, workers exit, and the API stops. A cancelled context is
// the normal shutdown path and returns nil.
func (d *Daemon) Run(ctx context.Context) error {
	obsStreams.Set(int64(len(d.streams)))
	defer obsStreams.Set(0)

	var ingestWG, workerWG sync.WaitGroup
	for _, s := range d.streams {
		workerWG.Add(1)
		go s.worker(&workerWG)
		ingestWG.Add(1)
		go func(s *Stream) {
			defer ingestWG.Done()
			d.ingestLoop(ctx, s)
		}(s)
	}

	// Staleness gauge: cheap scan, coarse cadence.
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for done := false; !done; {
		select {
		case <-ctx.Done():
			done = true
		case now := <-tick.C:
			d.updateFitAge(now)
		}
	}

	// Drain: stop the sockets (Collect returns ErrSinkClosed), wait for
	// ingest to stop touching the TraceStats, flush final fits, let the
	// workers run the queue dry, then stop the API.
	d.closeSinks()
	ingestWG.Wait()
	for _, s := range d.streams {
		s.flushFinal()
		close(s.jobs)
	}
	workerWG.Wait()
	d.api.close()
	return nil
}

// ingestLoop re-enters Collect until shutdown. Collect returns on idle
// gaps (IdleChunk) so the loop stays responsive to ctx even on a silent
// stream; a closed sink is the drain signal.
func (d *Daemon) ingestLoop(ctx context.Context, s *Stream) {
	for {
		_, err := s.sink.Collect(ctx, 0, d.cfg.IdleChunk)
		switch {
		case errors.Is(err, netgen.ErrSinkClosed):
			return
		case err != nil:
			obsIngestErrors.Inc()
			return
		}
		if ctx.Err() != nil {
			// Keep draining packets until the sink closes: Collect exits
			// on ctx deadline mid-read, but the drain path owns shutdown.
			return
		}
	}
}

// updateFitAge publishes the oldest fit age across streams.
func (d *Daemon) updateFitAge(now time.Time) {
	maxAge := 0.0
	for _, s := range d.streams {
		pub := s.snapshot()
		if !pub.hasFit {
			continue
		}
		if age := now.Sub(pub.fitAt).Seconds(); age > maxAge {
			maxAge = age
		}
	}
	obsFitAgeMax.Set(maxAge)
}
