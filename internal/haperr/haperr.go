// Package haperr defines the error vocabulary shared by the numeric core
// (solver, gm1, markov, sim) and the cmd/ binaries: sentinel errors that
// classify *why* an iterative computation stopped, a Diag record that every
// iterative result carries so callers can see how hard convergence was, and
// the exit-code convention the binaries use to report those classes to
// shells and batch schedulers.
//
// Error semantics across the library:
//
//   - Invalid user-supplied parameters (negative rates, NaN/Inf inputs,
//     empty models) return errors wrapping ErrBadParameter from the API
//     boundary (core.Model.Validate, gm1.Solve, sim.Config.Validate, the
//     solver entry points). Library panics are reserved for provable
//     internal invariants — indexing bugs, shape mismatches between
//     library-built matrices — that no parameter set reachable from the
//     binaries can trigger.
//   - An unstable queue (ρ >= 1) returns ErrUnstable.
//   - An exhausted iteration budget returns ErrNotConverged; the best
//     iterate is usually still returned alongside it, flagged via Diag.
//   - A cancelled or deadline-bounded context returns the context's own
//     error (context.Canceled / context.DeadlineExceeded), wrapped.
//   - A σ fixed-point iteration that collapses onto the trivial root σ = 1
//     despite a stable load returns ErrTrivialRoot instead of fabricating
//     a near-1 result.
package haperr

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors. Test with errors.Is; the numeric packages re-export the
// ones they own (gm1.ErrUnstable, markov.ErrNotConverged) as aliases of
// these, so either spelling matches.
var (
	// ErrBadParameter classifies invalid user-supplied parameters.
	ErrBadParameter = errors.New("invalid parameter")
	// ErrUnstable reports a queue with ρ >= 1 (no steady state exists).
	ErrUnstable = errors.New("queue is unstable (rho >= 1)")
	// ErrNotConverged reports an exhausted iteration budget.
	ErrNotConverged = errors.New("iteration did not converge")
	// ErrTrivialRoot reports a σ solver that converged to the trivial fixed
	// point σ = 1 even though the queue is stable; the bisection method is
	// immune and should be used instead.
	ErrTrivialRoot = errors.New("sigma iteration collapsed to the trivial root sigma = 1")
)

// Badf builds an error wrapping ErrBadParameter.
func Badf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrBadParameter)
}

// Diag records how an iterative computation went. Every iterative solver
// result embeds one, so "it returned a number" and "it converged" stay
// distinguishable.
type Diag struct {
	// Iterations actually used (sweeps, bisection steps, fixed-point steps).
	Iterations int
	// Residual is the final convergence metric: |A*(μ−μσ)−σ| for the σ
	// solvers, the total-variation change of the last sweep for the chain
	// solvers.
	Residual float64
	// Converged reports the tolerance was met within the budget.
	Converged bool
	// Truncated reports a state-space or event-budget truncation touched
	// the result (lattice bounds, MaxEvents).
	Truncated bool
	// Fallback names the method that actually produced the result when the
	// requested one exhausted its budget ("" = no degradation).
	Fallback string
	// Bracket is the σ bracket probe history ([probe, h(probe)] pairs
	// flattened) recorded by the bisection solver; nil elsewhere.
	Bracket []float64
}

func (d Diag) String() string {
	s := fmt.Sprintf("iters=%d residual=%.3g converged=%v", d.Iterations, d.Residual, d.Converged)
	if d.Truncated {
		s += " truncated"
	}
	if d.Fallback != "" {
		s += " fallback=" + d.Fallback
	}
	return s
}

// Exit codes shared by the cmd/ binaries. 2 is reserved for usage errors
// (flag parsing), following the flag package's own convention.
const (
	ExitOK           = 0
	ExitError        = 1 // any other failure
	ExitUsage        = 2
	ExitUnstable     = 3
	ExitNotConverged = 4
	ExitCancelled    = 5 // context cancelled or deadline exceeded
)

// ExitCode maps an error to the binaries' shared exit-code convention.
// Cancellation outranks the other classes: a solve that was cut off did not
// "fail to converge", it was never allowed to finish.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ExitCancelled
	case errors.Is(err, ErrUnstable):
		return ExitUnstable
	case errors.Is(err, ErrNotConverged), errors.Is(err, ErrTrivialRoot):
		return ExitNotConverged
	default:
		return ExitError
	}
}
