package hap_test

// One benchmark per reproduced table/figure (E1–E16), each running the
// corresponding experiment at a reduced scale and reporting its headline
// numbers as custom metrics, plus ablation benchmarks for the design
// choices DESIGN.md calls out (σ solver, R solver, Laplace evaluation,
// Solution-0 warm start) and raw engine throughput.
//
// Absolute values at bench scale differ from the full-scale runs in
// EXPERIMENTS.md (shorter horizons, tighter truncation); the shapes are
// the point. Full scale: go run ./cmd/experiments -scale 1.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"hap/internal/core"
	"hap/internal/dist"
	"hap/internal/experiments"
	"hap/internal/fit"
	"hap/internal/gm1"
	"hap/internal/haperr"
	"hap/internal/markov"
	"hap/internal/mmpp"
	"hap/internal/net"
	"hap/internal/sim"
	"hap/internal/solver"
)

const benchScale = 0.05

func benchExperiment(b *testing.B, id string, metrics ...string) {
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(&experiments.Context{Scale: benchScale, Out: io.Discard, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, mName := range metrics {
				if v, ok := res.Values[mName]; ok {
					b.ReportMetric(v, mName)
				}
			}
		}
	}
}

func BenchmarkE1HeadlineNumbers(b *testing.B) {
	benchExperiment(b, "E1", "delayExact", "delaySol2", "delayMM1", "sigma2")
}

func BenchmarkE2InterarrivalDensity(b *testing.B) {
	benchExperiment(b, "E2", "a0", "crossing1", "crossing2")
}

func BenchmarkE3InterarrivalTail(b *testing.B) {
	benchExperiment(b, "E3", "tailAbove")
}

func BenchmarkE4DelayVsCapacity(b *testing.B) {
	benchExperiment(b, "E4", "ratioLow", "ratioHigh")
}

func BenchmarkE5DelayVsArrivalRate(b *testing.B) {
	benchExperiment(b, "E5", "ratioFirst", "ratioLast")
}

func BenchmarkE6Fluctuation(b *testing.B) {
	benchExperiment(b, "E6", "hapSpan", "poisSpan")
}

func BenchmarkE7HourTrace(b *testing.B) {
	benchExperiment(b, "E7", "hourPeak")
}

func BenchmarkE8PeakBusyPeriod(b *testing.B) {
	benchExperiment(b, "E8", "peakHeight", "peakMinutes")
}

func BenchmarkE9PopulationAtPeak(b *testing.B) {
	benchExperiment(b, "E9", "onsetUsers", "onsetApps")
}

func BenchmarkE10BusyIdleTable(b *testing.B) {
	benchExperiment(b, "E10", "busyVarRatio", "heightVarRatio", "mountainDeficit")
}

func BenchmarkE11LevelSweep(b *testing.B) {
	benchExperiment(b, "E11", "tUser", "tApp", "tMsg")
}

func BenchmarkE12AdmissionBounds(b *testing.B) {
	benchExperiment(b, "E12", "gapFirst", "gapLast")
}

func BenchmarkE13EquivalentRateShapes(b *testing.B) {
	benchExperiment(b, "E13", "scvA", "scvC", "delayA", "delayC")
}

func BenchmarkE14SolutionAccuracy(b *testing.B) {
	benchExperiment(b, "E14", "errAtLow", "errAtHigh")
}

func BenchmarkE15ArrivalVsDeparture(b *testing.B) {
	benchExperiment(b, "E15", "exactChange")
}

func BenchmarkE16OnOffEquivalence(b *testing.B) {
	benchExperiment(b, "E16", "scvSim", "scvClosed")
}

func BenchmarkE17MultiplexCBR(b *testing.B) {
	benchExperiment(b, "E17", "penalty")
}

func BenchmarkE18MMPP2Comparator(b *testing.B) {
	benchExperiment(b, "E18", "hapDelay", "mmpp2Delay")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationSigmaPaper measures the paper's averaging σ iteration.
func BenchmarkAblationSigmaPaper(b *testing.B) {
	benchSigma(b, gm1.MethodPaper)
}

// BenchmarkAblationSigmaBisect measures the safeguarded bisection default.
func BenchmarkAblationSigmaBisect(b *testing.B) {
	benchSigma(b, gm1.MethodBisect)
}

func benchSigma(b *testing.B, method gm1.Method) {
	ia := core.PaperParams(20).Interarrival()
	lam := ia.MeanRate()
	b.ReportAllocs()
	b.ResetTimer()
	var sigma float64
	for i := 0; i < b.N; i++ {
		res, err := gm1.Solve(ia.Laplace, lam, 20, &gm1.Options{Method: method})
		if err != nil {
			b.Fatal(err)
		}
		sigma = res.Sigma
	}
	b.ReportMetric(sigma, "sigma")
}

// BenchmarkAblationLaplaceMixture measures Solution 1's exact-mixture
// transform path (chain solve + closed-form Laplace).
func BenchmarkAblationLaplaceMixture(b *testing.B) {
	m := core.PaperParams(20)
	opts := &solver.Options{MaxUsers: 12, MaxApps: 60}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solution1(m, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLaplaceQuadrature measures Solution 2's numeric
// quadrature of the closed-form density.
func BenchmarkAblationLaplaceQuadrature(b *testing.B) {
	m := core.PaperParams(20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solution2(m, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRLogReduction measures the quadratically convergent
// Latouche–Ramaswami R solver.
func BenchmarkAblationRLogReduction(b *testing.B) {
	benchR(b, solver.RMethodLogReduction)
}

// BenchmarkAblationRFunctional measures the naive linear R iteration.
func BenchmarkAblationRFunctional(b *testing.B) {
	benchR(b, solver.RMethodFunctional)
}

func benchR(b *testing.B, method solver.RMethod) {
	m := core.NewSymmetric(0.5, 0.25, 0.4, 0.5, 2, 50, 2, 2)
	proc, _, err := mmpp.FromHAPSimplified(m, 10, 20)
	if err != nil {
		b.Fatal(err)
	}
	mu, _ := m.UniformServiceRate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.SolveQBD(proc, mu, method, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSolution0WarmStart measures the brute-force sweep with
// the Solution-1 product warm start (the default).
func BenchmarkAblationSolution0WarmStart(b *testing.B) {
	benchSolution0(b, false)
}

// BenchmarkAblationSolution0ColdStart measures the same sweep from the
// uniform initial distribution.
func BenchmarkAblationSolution0ColdStart(b *testing.B) {
	benchSolution0(b, true)
}

func benchSolution0(b *testing.B, cold bool) {
	m := core.NewSymmetric(0.5, 0.25, 0.4, 0.5, 2, 50, 2, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := solver.Solution0(m, &solver.Options{
			MaxQueue: 200, Tol: 1e-9, MaxIter: 6000, DisableWarmStart: cold,
		})
		// A cold start may exhaust the sweep budget — that cost difference
		// is exactly what the ablation measures, so only hard errors fail.
		if err != nil && !errors.Is(err, markov.ErrNotConverged) {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Iterations), "sweeps")
		}
	}
}

// --- Engine throughput ----------------------------------------------------

// BenchmarkSimulatorHAPEvents measures raw event throughput of the
// discrete-event engine under the full hierarchy.
func BenchmarkSimulatorHAPEvents(b *testing.B) {
	m := core.PaperParams(20)
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		r := sim.RunHAP(m, sim.Config{Horizon: 20000, Seed: int64(i + 1)})
		events += r.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSimulatorPoissonEvents is the single-source baseline.
func BenchmarkSimulatorPoissonEvents(b *testing.B) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		r := sim.RunPoisson(8.25, 20, sim.Config{Horizon: 20000, Seed: int64(i + 1)})
		events += r.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkParallelReplications measures the replication fan-out at several
// worker counts; the statistics are bit-identical across sub-benchmarks by
// construction, so only the wall clock moves with the core count.
//
// The PR5 capture of this benchmark was flat across worker counts; the
// diagnosis was the capture environment, not the fan-out: the runner had
// GOMAXPROCS=1 (so every worker count time-sliced one core) and the
// one-shot -benchtime=1x charged each sub-benchmark's setup to its single
// iteration. Worker counts beyond GOMAXPROCS are now skipped instead of
// reported as misleading flat lines, and a warmup fan-out runs before the
// timer so short benchtimes measure steady state.
func BenchmarkParallelReplications(b *testing.B) {
	m := core.PaperParams(20)
	run := func(rep int, seed int64) *sim.RunResult {
		return sim.RunHAP(m, sim.Config{Horizon: 5000, Seed: seed,
			Measure: sim.MeasureConfig{Warmup: 100}})
	}
	// The replication count is part of the sub-benchmark name because it
	// scales the per-op work: the benchgate trajectory compares captures by
	// name, and a silent workload change would read as a regression.
	const reps = 16
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("reps=%d/workers=all", reps)
		if workers > 0 {
			name = fmt.Sprintf("reps=%d/workers=%d", reps, workers)
		}
		b.Run(name, func(b *testing.B) {
			if workers > runtime.GOMAXPROCS(0) {
				b.Skipf("workers=%d exceeds GOMAXPROCS=%d: scaling not measurable here", workers, runtime.GOMAXPROCS(0))
			}
			b.ReportAllocs()
			sim.ReplicateRuns(reps, 7, workers, run) // warm code paths and allocator
			b.ResetTimer()
			var events int64
			for i := 0; i < b.N; i++ {
				agg := sim.ReplicateRuns(reps, 7, workers, run)
				events += agg.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkShardedAggregate measures the sharded multi-source engine: 128
// independent HAP source/queue systems partitioned across per-core event
// loops. The merged statistics are bit-identical at every shard count
// (TestShardedBitIdentical), so the sub-benchmarks differ only in wall
// clock; shards=1 also exercises the calendar-queue scheduler, whose
// pending set (~128 sources × ~150 events) sits far above calEnter.
func BenchmarkShardedAggregate(b *testing.B) {
	m := core.PaperParams(20)
	const nsrc = 128
	shardCounts := []int{1}
	if runtime.GOMAXPROCS(0) > 1 {
		shardCounts = append(shardCounts, runtime.GOMAXPROCS(0))
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			sim.RunShardedHAP(m, nsrc, sim.ShardedConfig{Horizon: 200, Seed: 1, Shards: shards}) // warmup
			b.ResetTimer()
			var events int64
			for i := 0; i < b.N; i++ {
				r := sim.RunShardedHAP(m, nsrc, sim.ShardedConfig{Horizon: 2000, Seed: int64(i + 1), Shards: shards})
				events += r.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkNetworkEvents measures the queueing-network driver: four HAP
// sources through near-instant edge nodes into one bottleneck (the fan-in
// multiplexer), every packet crossing two stations plus a typed delivery
// event per hop. events/s here includes the packet-table and routing
// overhead on top of the raw engine loop.
func BenchmarkNetworkEvents(b *testing.B) {
	m := core.PaperParams(50)
	topo := net.FanIn("bench", 4, 1e5, 50, 0, 0)
	ings := make([]net.Ingress, 4)
	for i := range ings {
		ings[i] = net.HAPIngress(m, i, 4)
	}
	b.ReportAllocs()
	net.Run(topo, ings, net.Config{Horizon: 200, Seed: 1}) // warmup
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		r := net.Run(topo, ings, net.Config{Horizon: 5000, Seed: int64(i + 1)})
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		events += r.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkNetworkTandemEvents is the serial-line variant: one Poisson
// flow crossing eight stations, the deep-path cost per delivered packet.
func BenchmarkNetworkTandemEvents(b *testing.B) {
	mus := make([]float64, 8)
	for i := range mus {
		mus[i] = 20
	}
	topo := net.Tandem("bench-line", mus, 0)
	ings := []net.Ingress{net.PoissonIngress(8, 0, 7)}
	b.ReportAllocs()
	net.Run(topo, ings, net.Config{Horizon: 200, Seed: 1}) // warmup
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		r := net.Run(topo, ings, net.Config{Horizon: 5000, Seed: int64(i + 1)})
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		events += r.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// --- Fit throughput -------------------------------------------------------

// synthMMPP2Times samples n arrival timestamps from a 2-state MMPP
// embedded at arrival epochs — exactly the hidden-Markov law the EM
// fitter assumes, and cheap enough to build a 10⁶-arrival trace in
// benchmark setup.
func synthMMPP2Times(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	r := [2]float64{2, 20}
	p := [2]float64{0.98, 0.95} // self-transition probability per state
	state, t := 0, 0.0
	times := make([]float64, n)
	for i := range times {
		t += rng.ExpFloat64() / r[state]
		times[i] = t
		if rng.Float64() > p[state] {
			state = 1 - state
		}
	}
	return times
}

// BenchmarkFitEM measures Baum-Welch throughput on a 10⁶-arrival trace at
// a fixed iteration budget (the tolerance is unreachable, so every op
// runs exactly emBenchIters E+M passes — constant work, comparable across
// captures). arrivals/s is trace arrivals fitted per wall second, the
// number the hapd control-plane loop cares about.
func BenchmarkFitEM(b *testing.B) {
	const n, iters = 1_000_000, 20
	times := synthMMPP2Times(n, 42)
	var scratch fit.Scratch
	opt := fit.EMOptions{MaxIter: iters, Tol: 1e-300, MaxSamples: -1, Scratch: &scratch}
	b.ReportAllocs()
	b.ResetTimer()
	var samples int64
	for i := 0; i < b.N; i++ {
		f, err := fit.FitMMPP2EM(context.Background(), times, opt)
		if err != nil && !errors.Is(err, haperr.ErrNotConverged) {
			b.Fatal(err)
		}
		samples += int64(f.Samples)
	}
	b.ReportMetric(float64(samples)/b.Elapsed().Seconds(), "arrivals/s")
}

// BenchmarkFitTraceStats measures the streaming accumulator: 10⁶ arrivals
// through the full window ladder plus the sliding-window ring.
func BenchmarkFitTraceStats(b *testing.B) {
	const n = 1_000_000
	times := synthMMPP2Times(n, 7)
	horizon := times[n-1] - times[0]
	meanIA := horizon / float64(n-1)
	cfg := fit.TraceConfig{
		Windows:      fit.DefaultWindows(meanIA, horizon),
		GapThreshold: 10 * meanIA,
		SlideWindow:  horizon / 8,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts, err := fit.NewTraceStats(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range times {
			if err := ts.Add(t); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "arrivals/s")
}

// BenchmarkInterarrivalPDF measures the closed-form density evaluation,
// the inner loop of every Solution-2 quadrature.
func BenchmarkInterarrivalPDF(b *testing.B) {
	ia := core.PaperParams(20).Interarrival()
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += ia.PDF(float64(i%1000) / 1000)
	}
	_ = acc
}

// BenchmarkHyperExpSample measures mixture sampling (Solution-1 scale
// mixtures have thousands of branches).
func BenchmarkHyperExpSample(b *testing.B) {
	p := make([]float64, 2000)
	rates := make([]float64, 2000)
	for i := range p {
		p[i] = float64(i + 1)
		rates[i] = 0.1 + float64(i)*0.01
	}
	h := dist.NewHyperExponential(p, rates)
	rng := dist.NewStreams(1).Next()
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += h.Sample(rng)
	}
	_ = acc
}
